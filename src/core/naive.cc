#include "core/naive.h"

#include <cmath>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace paql::core {

using relation::RowId;

NaiveSelfJoinEvaluator::NaiveSelfJoinEvaluator(const relation::Table& table,
                                               NaiveOptions options)
    : table_(&table), options_(options) {}

double NaiveSelfJoinEvaluator::CombinationCount(size_t n, int c) {
  double total = 1;
  for (int i = 0; i < c; ++i) {
    total *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return total;
}

Result<EvalResult> NaiveSelfJoinEvaluator::Evaluate(
    const translate::CompiledQuery& query, int cardinality) const {
  if (cardinality < 1) {
    return Status::InvalidArgument("cardinality must be >= 1");
  }
  if (query.per_tuple_ub() != 1.0) {
    return Status::Unsupported(
        "the self-join formulation only supports REPEAT 0 queries "
        "(paper Section 2: strict cardinality, no repetition)");
  }
  Stopwatch total;
  EvalResult result;
  Deadline deadline(options_.time_limit_s);

  std::vector<RowId> base =
      options_.vectorized
          ? query.ComputeBaseRowsVectorized(*table_,
                                            ClampThreads(options_.threads))
          : query.ComputeBaseRows(*table_);
  size_t n = base.size();
  if (static_cast<size_t>(cardinality) > n) {
    return Status::Infeasible(
        StrCat("cardinality ", cardinality, " exceeds base relation size ",
               n));
  }

  // Enumerate index-ordered combinations (R1.pk < R2.pk < ... in the SQL
  // formulation), testing the global predicates on each complete tuple of
  // the c-way join — the access path a SQL engine without package support
  // is stuck with.
  std::vector<size_t> choice(cardinality);
  std::vector<RowId> rows(cardinality);
  std::vector<int64_t> mults(cardinality, 1);
  for (int i = 0; i < cardinality; ++i) choice[i] = i;
  bool found = false;
  double best_obj = 0;
  std::vector<size_t> best_choice;
  uint64_t examined = 0;
  bool minimize = !query.maximize();
  while (true) {
    if ((++examined & 1023) == 0 && deadline.Expired()) {
      return Status::ResourceExhausted(
          StrCat("self-join enumeration exceeded ", options_.time_limit_s,
                 "s after ", examined, " of ~",
                 FormatDouble(CombinationCount(n, cardinality), 4),
                 " combinations"));
    }
    for (int i = 0; i < cardinality; ++i) rows[i] = base[choice[i]];
    if (query.PackageSatisfiesGlobals(*table_, rows, mults)) {
      double obj = query.ObjectiveValue(*table_, rows, mults);
      bool better = !found || (minimize ? obj < best_obj : obj > best_obj);
      if (better) {
        found = true;
        best_obj = obj;
        best_choice = choice;
      }
      if (!query.has_objective() && found) break;  // any feasible package
    }
    // Advance to the next combination in lexicographic order.
    int i = cardinality - 1;
    while (i >= 0 &&
           choice[i] == n - static_cast<size_t>(cardinality - i)) {
      --i;
    }
    if (i < 0) break;
    ++choice[i];
    for (int j = i + 1; j < cardinality; ++j) choice[j] = choice[j - 1] + 1;
  }

  if (!found) {
    return Status::Infeasible("no combination satisfies the query");
  }
  for (size_t idx : best_choice) {
    result.package.rows.push_back(base[idx]);
    result.package.multiplicity.push_back(1);
  }
  result.objective = best_obj;
  result.stats.wall_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace paql::core
