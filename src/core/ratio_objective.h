// Ratio (AVG) objectives via Dinkelbach's parametric algorithm.
//
// The paper limits package queries to linear aggregate functions and defers
// non-linear objectives to future work (Section 2.1); its translation
// rejects MINIMIZE/MAXIMIZE AVG(...) because a ratio of two package sums
//
//          SUM(P.attr)        sum_i a_i x_i
//   AVG = ------------    =   -------------
//          COUNT(P.*)          sum_i  x_i
//
// has no linear encoding. This module implements that future-work feature
// exactly, using the classic reduction from fractional to parametric linear
// programming (Dinkelbach 1967): minimizing p(x)/q(x) over a feasible set
// with q > 0 is equivalent to finding the root lambda* of
//
//   F(lambda) = min { p(x) - lambda * q(x) },
//
// and F is piecewise-linear and strictly decreasing, so the iteration
// lambda_{k+1} = p(x_k)/q(x_k) converges superlinearly — and *finitely*
// here, because x ranges over finitely many packages. Each iteration is one
// ordinary package ILP with re-weighted objective coefficients
// (a_i - lambda), solved by the same branch-and-bound as DIRECT.
//
// Semantics:
//  * The AVG argument may carry a subquery filter; tuples failing the
//    filter contribute to neither numerator nor denominator.
//  * Packages with an empty (filtered) denominator have undefined AVG; the
//    evaluator adds the implicit constraint COUNT(filtered) >= 1 and
//    reports infeasibility when no such package exists.
//  * All SUCH THAT constraints, WHERE, and REPEAT behave exactly as in
//    DIRECT.
#ifndef PAQL_CORE_RATIO_OBJECTIVE_H_
#define PAQL_CORE_RATIO_OBJECTIVE_H_

#include "core/package.h"
#include "engine/exec_context.h"
#include "paql/ast.h"
#include "relation/column_source.h"
#include "relation/table.h"

namespace paql::core {

/// Dinkelbach-specific knobs; the inherited `limits`/`branch_and_bound`
/// budget each inner ILP solve (one per parametric iteration).
struct RatioObjectiveOptions : engine::ExecContext {
  /// Dinkelbach iteration cap (convergence is finite but this guards
  /// pathological numerics). Typical instances converge in 2-5 iterations.
  int max_iterations = 64;
  /// |F(lambda)| below which lambda is accepted as the optimal ratio.
  double tolerance = 1e-9;
};

/// Evaluates package queries whose objective is MINIMIZE/MAXIMIZE AVG(...).
/// The rest of the query (WHERE / SUCH THAT / REPEAT) is unrestricted
/// within PaQL's linear fragment.
class RatioObjectiveEvaluator {
 public:
  explicit RatioObjectiveEvaluator(const relation::ColumnSource& table,
                                   RatioObjectiveOptions options = {});

  /// Returns the optimal package and its AVG objective value. Fails with
  /// kInvalidArgument when the query's objective is not a bare AVG call,
  /// kInfeasible when no package with a non-empty denominator satisfies the
  /// constraints.
  Result<EvalResult> Evaluate(const lang::PackageQuery& query) const;

  const relation::ColumnSource& table() const { return *table_; }

 private:
  const relation::ColumnSource* table_;
  RatioObjectiveOptions options_;
};

}  // namespace paql::core

#endif  // PAQL_CORE_RATIO_OBJECTIVE_H_
