// DIRECT package evaluation (Section 3.2 of the paper).
//
// Three steps: (1) translate the PaQL query into an ILP, (2) compute the
// base relation and eliminate excluded variables, (3) hand the whole ILP to
// the solver. DIRECT is exact but inherits the solver's failure modes on
// large or combinatorially hard inputs — the SolverLimits budgets reproduce
// those failures (see ilp/solver_limits.h).
#ifndef PAQL_CORE_DIRECT_H_
#define PAQL_CORE_DIRECT_H_

#include "core/package.h"
#include "engine/exec_context.h"
#include "paql/ast.h"

namespace paql::core {

/// DIRECT has no strategy-specific knobs: its options are exactly the
/// shared execution context (`limits` budgets the single whole-problem
/// solve; `cancel` is polled before handing the ILP to the solver).
struct DirectOptions : engine::ExecContext {};

/// Evaluates package queries by solving one ILP over the full base relation.
class DirectEvaluator {
 public:
  explicit DirectEvaluator(const relation::ColumnSource& table,
                           DirectOptions options = {});

  /// Parse-compile-and-evaluate convenience entry point.
  Result<EvalResult> Evaluate(const lang::PackageQuery& query) const;

  /// Evaluate a precompiled query (reuse across dataset fractions).
  Result<EvalResult> Evaluate(const translate::CompiledQuery& query) const;

  /// Evaluate over an explicit candidate row subset (used by benches that
  /// sweep dataset fractions). Rows are ids into the evaluator's table; the
  /// base predicate is applied on top of the subset.
  Result<EvalResult> EvaluateOnRows(
      const translate::CompiledQuery& query,
      const std::vector<relation::RowId>& rows) const;

  const relation::ColumnSource& table() const { return *table_; }

 private:
  /// Steps 1+3 over an already-filtered candidate set. `filter_seconds`
  /// (the base-relation scan) is folded into the reported timings.
  Result<EvalResult> SolveCandidates(
      const translate::CompiledQuery& query,
      const std::vector<relation::RowId>& candidates,
      double filter_seconds) const;

  const relation::ColumnSource* table_;
  DirectOptions options_;
};

}  // namespace paql::core

#endif  // PAQL_CORE_DIRECT_H_
