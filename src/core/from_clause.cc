#include "core/from_clause.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/str_util.h"
#include "relation/join.h"

namespace paql::core {

using lang::BoolExpr;
using lang::BoolKind;
using lang::CmpOp;
using lang::FromItem;
using lang::GlobalExpr;
using lang::GlobalKind;
using lang::GlobalPredicate;
using lang::PackageQuery;
using lang::ScalarExpr;
using lang::ScalarKind;
using relation::Table;

namespace {

/// One resolved FROM relation.
struct Input {
  std::string name;
  std::string alias;
  const Table* table = nullptr;
};

std::string JoinedColumnName(const std::string& alias,
                             const std::string& column) {
  return StrCat(alias, "_", column);
}

/// Resolves (qualifier, column) references against the FROM inputs and the
/// package name, producing joined-table column names.
class RefResolver {
 public:
  RefResolver(const std::vector<Input>& inputs, std::string package_name)
      : inputs_(inputs), package_name_(std::move(package_name)) {}

  Result<std::string> Resolve(const std::string& qualifier,
                              const std::string& column) const {
    if (!qualifier.empty() && qualifier != package_name_) {
      const Input* input = FindInput(qualifier);
      if (input == nullptr) {
        return Status::NotFound(
            StrCat("unknown relation alias '", qualifier, "' in reference '",
                   qualifier, ".", column, "'"));
      }
      if (!input->table->schema().FindColumn(column).has_value()) {
        return Status::NotFound(StrCat("relation '", input->alias,
                                       "' has no column '", column, "'"));
      }
      return JoinedColumnName(input->alias, column);
    }
    // Unqualified (or package-qualified): must be unambiguous across inputs.
    const Input* owner = nullptr;
    for (const Input& input : inputs_) {
      if (input.table->schema().FindColumn(column).has_value()) {
        if (owner != nullptr) {
          return Status::InvalidArgument(
              StrCat("column '", column, "' is ambiguous (appears in '",
                     owner->alias, "' and '", input.alias,
                     "'); qualify it with a relation alias"));
        }
        owner = &input;
      }
    }
    if (owner == nullptr) {
      return Status::NotFound(
          StrCat("no FROM relation has a column '", column, "'"));
    }
    return JoinedColumnName(owner->alias, column);
  }

  const Input* FindInput(const std::string& qualifier) const {
    for (const Input& input : inputs_) {
      if (input.alias == qualifier || input.name == qualifier) return &input;
    }
    return nullptr;
  }

 private:
  const std::vector<Input>& inputs_;
  std::string package_name_;
};

// --- AST rewriting (in place, over cloned subtrees) ----------------------

Status RewriteScalar(ScalarExpr* expr, const RefResolver& resolver) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == ScalarKind::kColumn) {
    PAQL_ASSIGN_OR_RETURN(std::string renamed,
                          resolver.Resolve(expr->qualifier, expr->column));
    expr->qualifier.clear();
    expr->column = std::move(renamed);
    return Status::OK();
  }
  PAQL_RETURN_IF_ERROR(RewriteScalar(expr->lhs.get(), resolver));
  return RewriteScalar(expr->rhs.get(), resolver);
}

Status RewriteBool(BoolExpr* expr, const RefResolver& resolver) {
  if (expr == nullptr) return Status::OK();
  PAQL_RETURN_IF_ERROR(RewriteScalar(expr->scalar_lhs.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteScalar(expr->scalar_rhs.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteScalar(expr->between_lo.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteScalar(expr->between_hi.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteBool(expr->left.get(), resolver));
  return RewriteBool(expr->right.get(), resolver);
}

Status RewriteGlobal(GlobalExpr* expr, const RefResolver& resolver) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == GlobalKind::kAgg) {
    PAQL_RETURN_IF_ERROR(RewriteScalar(expr->agg->arg.get(), resolver));
    return RewriteBool(expr->agg->filter.get(), resolver);
  }
  PAQL_RETURN_IF_ERROR(RewriteGlobal(expr->lhs.get(), resolver));
  return RewriteGlobal(expr->rhs.get(), resolver);
}

Status RewriteGlobalPred(GlobalPredicate* pred, const RefResolver& resolver) {
  if (pred == nullptr) return Status::OK();
  PAQL_RETURN_IF_ERROR(RewriteGlobal(pred->lhs.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteGlobal(pred->rhs.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteGlobal(pred->lo.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteGlobal(pred->hi.get(), resolver));
  PAQL_RETURN_IF_ERROR(RewriteGlobalPred(pred->left.get(), resolver));
  return RewriteGlobalPred(pred->right.get(), resolver);
}

// --- WHERE decomposition --------------------------------------------------

/// A recognized equi-join predicate: alias1.col1 = alias2.col2 with the two
/// sides in different FROM relations.
struct JoinPredicate {
  size_t left_input = 0;  // indices into the inputs vector
  size_t right_input = 0;
  std::string left_column;
  std::string right_column;
  bool consumed = false;
};

/// Collect the AND-tree leaves of `expr` (ownership transferred).
void SplitConjuncts(std::unique_ptr<BoolExpr> expr,
                    std::vector<std::unique_ptr<BoolExpr>>* out) {
  if (expr == nullptr) return;
  if (expr->kind == BoolKind::kAnd) {
    SplitConjuncts(std::move(expr->left), out);
    SplitConjuncts(std::move(expr->right), out);
    return;
  }
  out->push_back(std::move(expr));
}

/// If `leaf` is an explicit cross-relation equality, return it as a join
/// predicate. Both sides must be qualified column references (implicit
/// unqualified joins are ambiguous and stay in the residual WHERE).
std::optional<JoinPredicate> AsJoinPredicate(const BoolExpr& leaf,
                                             const RefResolver& resolver,
                                             const std::vector<Input>& inputs) {
  if (leaf.kind != BoolKind::kCmp || leaf.cmp != CmpOp::kEq) {
    return std::nullopt;
  }
  const ScalarExpr* l = leaf.scalar_lhs.get();
  const ScalarExpr* r = leaf.scalar_rhs.get();
  if (l == nullptr || r == nullptr) return std::nullopt;
  if (l->kind != ScalarKind::kColumn || r->kind != ScalarKind::kColumn) {
    return std::nullopt;
  }
  if (l->qualifier.empty() || r->qualifier.empty()) return std::nullopt;
  const Input* li = resolver.FindInput(l->qualifier);
  const Input* ri = resolver.FindInput(r->qualifier);
  if (li == nullptr || ri == nullptr || li == ri) return std::nullopt;
  if (!li->table->schema().FindColumn(l->column).has_value() ||
      !ri->table->schema().FindColumn(r->column).has_value()) {
    return std::nullopt;
  }
  JoinPredicate jp;
  jp.left_input = static_cast<size_t>(li - inputs.data());
  jp.right_input = static_cast<size_t>(ri - inputs.data());
  jp.left_column = l->column;
  jp.right_column = r->column;
  return jp;
}

/// Rebuild an AND tree from leaves (nullptr when empty).
std::unique_ptr<BoolExpr> AndOf(std::vector<std::unique_ptr<BoolExpr>> leaves) {
  std::unique_ptr<BoolExpr> out;
  for (auto& leaf : leaves) {
    out = out == nullptr ? std::move(leaf)
                         : BoolExpr::And(std::move(out), std::move(leaf));
  }
  return out;
}

}  // namespace

Result<MaterializedFrom> MaterializeFromClause(
    const PackageQuery& query, const Catalog& catalog,
    const FromClauseOptions& options) {
  // Resolve the FROM list.
  std::vector<Input> inputs;
  auto resolve_input = [&](const std::string& name,
                           const std::string& alias) -> Status {
    auto it = catalog.find(name);
    if (it == catalog.end() || it->second == nullptr) {
      return Status::NotFound(
          StrCat("FROM relation '", name, "' is not in the catalog"));
    }
    for (const Input& prev : inputs) {
      if (prev.alias == alias) {
        return Status::InvalidArgument(
            StrCat("duplicate FROM alias '", alias, "'"));
      }
    }
    inputs.push_back({name, alias, it->second});
    return Status::OK();
  };
  PAQL_RETURN_IF_ERROR(
      resolve_input(query.relation_name, query.relation_alias));
  for (const FromItem& item : query.more_relations) {
    PAQL_RETURN_IF_ERROR(resolve_input(item.relation_name, item.alias));
  }

  MaterializedFrom out;
  if (inputs.size() == 1) {
    // Single relation: pass through unchanged.
    out.table = *inputs[0].table;
    out.query = query.Clone();
    return out;
  }

  RefResolver resolver(inputs, query.package_name);

  // Split WHERE into join predicates and residual conjuncts.
  PackageQuery rewritten = query.Clone();
  std::vector<std::unique_ptr<BoolExpr>> conjuncts;
  SplitConjuncts(std::move(rewritten.where), &conjuncts);
  std::vector<JoinPredicate> join_preds;
  std::vector<std::unique_ptr<BoolExpr>> residual;
  for (auto& leaf : conjuncts) {
    auto jp = AsJoinPredicate(*leaf, resolver, inputs);
    if (jp.has_value()) {
      join_preds.push_back(*jp);
    } else {
      residual.push_back(std::move(leaf));
    }
  }

  // Join left-to-right. The accumulated table carries joined column names;
  // `joined_aliases` tracks which inputs it covers.
  Table acc;
  std::set<size_t> joined_inputs;
  {
    // Materialize input 0 with renamed columns via a 0-key "join" against
    // nothing: simplest is a manual projection-with-rename copy.
    std::vector<relation::ColumnDef> defs;
    for (size_t c = 0; c < inputs[0].table->num_columns(); ++c) {
      relation::ColumnDef def = inputs[0].table->schema().column(c);
      def.name = JoinedColumnName(inputs[0].alias, def.name);
      defs.push_back(std::move(def));
    }
    acc = Table{relation::Schema(std::move(defs))};
    acc.Reserve(inputs[0].table->num_rows());
    std::vector<relation::Value> row(inputs[0].table->num_columns());
    for (relation::RowId r = 0; r < inputs[0].table->num_rows(); ++r) {
      for (size_t c = 0; c < inputs[0].table->num_columns(); ++c) {
        row[c] = inputs[0].table->GetValue(r, c);
      }
      acc.AppendRowUnchecked(row);
    }
    joined_inputs.insert(0);
  }

  for (size_t next = 1; next < inputs.size(); ++next) {
    // Keys: consumed join predicates linking an already-joined input to
    // `next`.
    std::vector<relation::JoinKey> keys;
    for (JoinPredicate& jp : join_preds) {
      if (jp.consumed) continue;
      size_t other;
      std::string acc_col, next_col;
      if (jp.right_input == next && joined_inputs.count(jp.left_input) > 0) {
        other = jp.left_input;
        acc_col = JoinedColumnName(inputs[other].alias, jp.left_column);
        next_col = jp.right_column;
      } else if (jp.left_input == next &&
                 joined_inputs.count(jp.right_input) > 0) {
        other = jp.right_input;
        acc_col = JoinedColumnName(inputs[other].alias, jp.right_column);
        next_col = jp.left_column;
      } else {
        continue;
      }
      auto acc_idx = acc.schema().FindColumn(acc_col);
      auto next_idx = inputs[next].table->schema().FindColumn(next_col);
      PAQL_CHECK(acc_idx.has_value() && next_idx.has_value());
      keys.push_back({*acc_idx, *next_idx});
      jp.consumed = true;
      ++out.join_predicates_used;
    }
    relation::JoinOptions jopts;
    jopts.left_prefix = "";  // accumulated columns are already renamed
    jopts.right_prefix = inputs[next].alias;
    jopts.max_result_rows = options.max_result_rows;
    if (keys.empty()) {
      out.used_cross_join = true;
      PAQL_ASSIGN_OR_RETURN(acc,
                            relation::CrossJoin(acc, *inputs[next].table,
                                                jopts));
    } else {
      PAQL_ASSIGN_OR_RETURN(
          acc, relation::HashEquiJoin(acc, *inputs[next].table, keys, jopts));
    }
    joined_inputs.insert(next);
  }

  // Unconsumed join predicates (e.g. a second condition between two already
  // joined relations) become residual filters over the joined table.
  for (JoinPredicate& jp : join_preds) {
    if (jp.consumed) continue;
    auto leaf = BoolExpr::Cmp(
        CmpOp::kEq,
        ScalarExpr::Column("", JoinedColumnName(inputs[jp.left_input].alias,
                                                jp.left_column)),
        ScalarExpr::Column("", JoinedColumnName(inputs[jp.right_input].alias,
                                                jp.right_column)));
    residual.push_back(std::move(leaf));
    ++out.join_predicates_used;
  }

  // Rewrite residual WHERE, SUCH THAT, and the objective onto the joined
  // columns. (Already-renamed synthetic leaves above resolve trivially: the
  // resolver only sees unqualified names that are unique by construction —
  // they are joined-table names, not input names — so skip them.)
  std::vector<std::unique_ptr<BoolExpr>> rewritten_residual;
  for (auto& leaf : residual) {
    // Synthetic equality leaves reference joined names already; detect them
    // by successful lookup in the accumulated schema and pass through.
    bool already_joined_names = false;
    if (leaf->kind == BoolKind::kCmp && leaf->scalar_lhs != nullptr &&
        leaf->scalar_lhs->kind == ScalarKind::kColumn &&
        leaf->scalar_lhs->qualifier.empty() &&
        acc.schema().FindColumn(leaf->scalar_lhs->column).has_value()) {
      already_joined_names = true;
    }
    if (!already_joined_names) {
      PAQL_RETURN_IF_ERROR(RewriteBool(leaf.get(), resolver));
    }
    rewritten_residual.push_back(std::move(leaf));
  }
  rewritten.where = AndOf(std::move(rewritten_residual));
  PAQL_RETURN_IF_ERROR(
      RewriteGlobalPred(rewritten.such_that.get(), resolver));
  if (rewritten.objective.has_value()) {
    PAQL_RETURN_IF_ERROR(
        RewriteGlobal(rewritten.objective->expr.get(), resolver));
  }

  rewritten.relation_name = options.joined_relation_name;
  rewritten.relation_alias = options.joined_relation_name;
  rewritten.more_relations.clear();
  out.table = std::move(acc);
  out.query = std::move(rewritten);
  return out;
}

}  // namespace paql::core
