// Incremental package re-evaluation after data updates.
//
// SKETCHREFINE's divide-and-conquer structure (Section 4.2) has a useful
// corollary the paper does not exploit: a previously computed package stays
// locally optimal on groups whose membership did not change. After a batch
// of appends and deletions is absorbed into the partitioning
// (partition/dynamic_update.h), only the "dirty" groups — the ones that
// gained rows, lost rows, absorbed a dissolved neighbor, or were split —
// can change the answer, so it suffices to re-run one refine-style
// subproblem over the dirty groups' candidates with the clean groups'
// contributions folded into the constraint bounds, exactly like
// Algorithm 2's refine query Q[G_j]. Previous-package tuples the batch
// deleted are dropped before the split (their group is dirty by
// construction, so replacements are re-chosen).
//
// Guarantees mirror REFINE's: the returned package is always feasible for
// the query (it is validated), and its objective is at least as good as the
// previous package's whenever the previous package is still feasible (the
// subproblem can re-select the previous dirty-group tuples, which remain
// candidates under appends). When the fixed clean part makes the subproblem
// infeasible (possible when re-evaluating a *different* query than the one
// that produced `previous`), the evaluator falls back to a full
// SKETCHREFINE run and reports it in the stats.
#ifndef PAQL_CORE_INCREMENTAL_H_
#define PAQL_CORE_INCREMENTAL_H_

#include <vector>

#include "core/package.h"
#include "core/sketch_refine.h"
#include "partition/partitioner.h"
#include "relation/column_source.h"
#include "relation/table.h"
#include "translate/compiled_query.h"

namespace paql::core {

struct IncrementalOptions {
  /// Budgets for the dirty-group subproblem and the full fallback.
  SketchRefineOptions sketch_refine;
};

struct IncrementalResult {
  EvalResult result;
  /// The dirty-group subproblem was infeasible and a full SKETCHREFINE run
  /// produced the answer instead. The result's stats still include the
  /// abandoned subproblem's translate time and solver effort (the work was
  /// performed either way).
  bool used_fallback = false;
  /// Candidate tuples in the dirty-group subproblem (also populated on
  /// fallback runs — it describes the subproblem that was attempted).
  size_t dirty_candidates = 0;
  /// Previous-package tuples dropped because their row was deleted by the
  /// batch (their groups are dirty, so replacements are re-chosen).
  size_t previous_rows_deleted = 0;
};

/// Re-evaluates `query` over `table` + `partitioning` starting from
/// `previous`: tuples of `previous` in clean groups are kept fixed, dirty
/// groups are re-solved. `dirty_groups` lists group ids of `partitioning`
/// considered stale (from partition::AbsorbResult::dirty_groups).
///
/// `previous` row ids must be valid rows of `table` (row ids are stable:
/// appends never invalidate them and deletions only mark them). Rows of
/// `previous` that fall in dirty groups are released and re-chosen; rows
/// the batch deleted (table.RowDeleted, or left without a group) are
/// dropped from the package — their group is necessarily dirty, so the
/// subproblem picks replacements.
Result<IncrementalResult> ReEvaluatePackage(
    const relation::ColumnSource& table,
    const partition::Partitioning& partitioning,
    const translate::CompiledQuery& query, const Package& previous,
    const std::vector<uint32_t>& dirty_groups,
    const IncrementalOptions& options = {});

}  // namespace paql::core

#endif  // PAQL_CORE_INCREMENTAL_H_
