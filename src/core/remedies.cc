#include "core/remedies.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/str_util.h"
#include "core/direct.h"
#include "ilp/iis.h"
#include "partition/partitioner.h"

namespace paql::core {

using partition::Partitioning;
using relation::RowId;
using relation::ColumnSource;
using relation::Table;
using translate::CompiledQuery;

namespace {

/// Evaluate with SKETCHREFINE over an ad-hoc partitioning.
Result<EvalResult> RunSketchRefine(const ColumnSource& table, const Partitioning& p,
                                   const SketchRefineOptions& options,
                                   const CompiledQuery& query) {
  SketchRefineEvaluator evaluator(table, p, options);
  return evaluator.Evaluate(query);
}

}  // namespace

const char* RemedyName(InfeasibilityRemedy remedy) {
  switch (remedy) {
    case InfeasibilityRemedy::kFurtherPartitioning:
      return "further_partitioning";
    case InfeasibilityRemedy::kDropAttributes:
      return "drop_attributes";
    case InfeasibilityRemedy::kGroupMerging:
      return "group_merging";
  }
  return "?";
}

RobustSketchRefineEvaluator::RobustSketchRefineEvaluator(
    const ColumnSource& table, const Partitioning& partitioning,
    RemedyOptions options)
    : table_(&table),
      partitioning_(&partitioning),
      options_(std::move(options)) {}

Result<RemedyReport> RobustSketchRefineEvaluator::Evaluate(
    const lang::PackageQuery& query) const {
  PAQL_ASSIGN_OR_RETURN(
      CompiledQuery cq, CompiledQuery::Compile(query, table_->schema()));
  return Evaluate(cq);
}

Result<RemedyReport> RobustSketchRefineEvaluator::Evaluate(
    const CompiledQuery& query) const {
  auto plain =
      RunSketchRefine(*table_, *partitioning_, options_.sketch_refine, query);
  if (plain.ok()) {
    RemedyReport report;
    report.result = std::move(*plain);
    return report;
  }
  if (!plain.status().IsInfeasible()) return plain.status();

  Status last = plain.status();
  for (InfeasibilityRemedy remedy : options_.chain) {
    Result<RemedyReport> attempt = Status::Internal("unreached");
    switch (remedy) {
      case InfeasibilityRemedy::kFurtherPartitioning:
        attempt = TryFurtherPartitioning(query);
        break;
      case InfeasibilityRemedy::kDropAttributes:
        attempt = TryDropAttributes(query);
        break;
      case InfeasibilityRemedy::kGroupMerging:
        attempt = TryGroupMerging(query);
        break;
    }
    if (attempt.ok()) {
      attempt->remedy_used = RemedyName(remedy);
      return attempt;
    }
    if (!attempt.status().IsInfeasible()) return attempt.status();
    last = attempt.status();
  }
  return Status::Infeasible(
      StrCat("query remained infeasible after all remedies (last: ",
             last.message(), ")"));
}

Result<RemedyReport> RobustSketchRefineEvaluator::TryFurtherPartitioning(
    const CompiledQuery& query) const {
  // Halve tau each round: smaller groups get representatives closer to
  // their members, which repairs skew-induced false infeasibility (paper
  // remedy 2: "Further partitioning by reducing the size threshold tau may
  // eliminate the problem").
  size_t tau = partitioning_->size_threshold;
  Status last = Status::Infeasible("further partitioning never ran");
  for (int round = 1; round <= options_.max_rounds_per_remedy; ++round) {
    tau = std::max(options_.min_size_threshold, tau / 2);
    partition::PartitionOptions popts;
    popts.attributes = partitioning_->attributes;
    popts.size_threshold = tau;
    popts.radius_limit = partitioning_->radius_limit;
    PAQL_ASSIGN_OR_RETURN(Partitioning finer,
                          partition::PartitionTable(*table_, popts));
    auto result =
        RunSketchRefine(*table_, finer, options_.sketch_refine, query);
    if (result.ok()) {
      RemedyReport report;
      report.result = std::move(*result);
      report.rounds = round;
      return report;
    }
    if (!result.status().IsInfeasible()) return result.status();
    last = result.status();
    if (tau == options_.min_size_threshold) break;  // cannot go finer
  }
  return last;
}

Result<std::vector<std::string>>
RobustSketchRefineEvaluator::IisAttributes(const CompiledQuery& query) const {
  // Rebuild the sketch ILP the evaluator would solve: one variable per
  // representative of a group with at least one base-accepted candidate,
  // bounded by |G_j| * (K+1).
  std::vector<RowId> rep_rows;
  std::vector<double> rep_ub;
  for (size_t g = 0; g < partitioning_->num_groups(); ++g) {
    size_t candidates = 0;
    for (RowId r : partitioning_->groups[g]) {
      if (query.BaseAccepts(*table_, r)) ++candidates;
    }
    if (candidates == 0) continue;
    rep_rows.push_back(static_cast<RowId>(g));
    double ub = query.per_tuple_ub();
    rep_ub.push_back(std::isinf(ub) ? ub
                                    : ub * static_cast<double>(candidates));
  }
  CompiledQuery::Segment seg;
  seg.table = &partitioning_->representatives;
  seg.rows = &rep_rows;
  seg.ub_override = &rep_ub;
  PAQL_ASSIGN_OR_RETURN(lp::Model model,
                        query.BuildModelSegments({seg}, nullptr));
  auto iis = ilp::FindIisRows(model);
  if (!iis.ok()) {
    // LP-feasible sketch (the infeasibility was integrality- or
    // refinement-induced): no attribute guidance available.
    return std::vector<std::string>{};
  }
  // Model rows map to leaf constraints in order for pure-AND queries; OR
  // queries append indicator rows past the leaves, which carry no single
  // attribute and are skipped.
  std::set<std::string> attrs;
  for (int row : *iis) {
    if (static_cast<size_t>(row) >= query.num_leaf_constraints()) continue;
    for (const auto& col : query.leaf_columns(static_cast<size_t>(row))) {
      attrs.insert(col);
    }
  }
  return std::vector<std::string>(attrs.begin(), attrs.end());
}

Result<RemedyReport> RobustSketchRefineEvaluator::TryDropAttributes(
    const CompiledQuery& query) const {
  PAQL_ASSIGN_OR_RETURN(std::vector<std::string> conflict_attrs,
                        IisAttributes(query));
  if (conflict_attrs.empty()) {
    return Status::Infeasible(
        "drop-attributes remedy: no IIS guidance available");
  }
  // Project the partitioning away from the conflicting attributes, one more
  // per round, so groups merge along the dimensions the conflict lives in
  // (paper remedy 3).
  std::vector<std::string> remaining = partitioning_->attributes;
  std::vector<std::string> dropped;
  Status last = Status::Infeasible("drop-attributes remedy never ran");
  int rounds = 0;
  for (const std::string& attr : conflict_attrs) {
    auto it = std::find(remaining.begin(), remaining.end(), attr);
    if (it == remaining.end()) continue;
    if (remaining.size() == 1) break;  // must keep at least one dimension
    remaining.erase(it);
    dropped.push_back(attr);
    if (++rounds > options_.max_rounds_per_remedy) break;
    partition::PartitionOptions popts;
    popts.attributes = remaining;
    popts.size_threshold = partitioning_->size_threshold;
    popts.radius_limit = partitioning_->radius_limit;
    PAQL_ASSIGN_OR_RETURN(Partitioning projected,
                          partition::PartitionTable(*table_, popts));
    auto result =
        RunSketchRefine(*table_, projected, options_.sketch_refine, query);
    if (result.ok()) {
      RemedyReport report;
      report.result = std::move(*result);
      report.rounds = rounds;
      report.dropped_attributes = dropped;
      return report;
    }
    if (!result.status().IsInfeasible()) return result.status();
    last = result.status();
  }
  return last;
}

Result<RemedyReport> RobustSketchRefineEvaluator::TryGroupMerging(
    const CompiledQuery& query) const {
  // Merge groups pairwise per round. Groups are ordered by their centroid
  // on the first partitioning attribute so merges combine neighbors and
  // representatives stay meaningful. With one group left, SKETCHREFINE
  // degenerates to DIRECT on the full problem (paper remedy 4: "in the
  // worst case, this process reduces the problem to the original problem
  // ... guaranteed to find a solution to any feasible query").
  std::vector<std::vector<RowId>> groups = partitioning_->groups;
  auto rep_attr = partitioning_->representatives.schema().FindColumn(
      partitioning_->attributes.front());
  PAQL_CHECK(rep_attr.has_value());
  // Order group indices by representative value once; merging preserves
  // neighborhood ordering well enough across rounds.
  std::vector<size_t> order(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double va = partitioning_->representatives.GetDouble(
        static_cast<RowId>(a), *rep_attr);
    double vb = partitioning_->representatives.GetDouble(
        static_cast<RowId>(b), *rep_attr);
    if (va != vb) return va < vb;
    return a < b;
  });
  std::vector<std::vector<RowId>> current;
  current.reserve(groups.size());
  for (size_t g : order) current.push_back(std::move(groups[g]));

  int round = 0;
  while (current.size() > 1) {
    ++round;
    std::vector<std::vector<RowId>> merged;
    merged.reserve((current.size() + 1) / 2);
    for (size_t i = 0; i < current.size(); i += 2) {
      if (i + 1 < current.size()) {
        current[i].insert(current[i].end(), current[i + 1].begin(),
                          current[i + 1].end());
      }
      merged.push_back(std::move(current[i]));
    }
    current = std::move(merged);
    if (current.size() == 1) break;  // handled by the exact final step
    size_t max_size = 0;
    for (const auto& g : current) max_size = std::max(max_size, g.size());
    PAQL_ASSIGN_OR_RETURN(
        Partitioning coarser,
        partition::MakePartitioningFromGroups(
            *table_, partitioning_->attributes, max_size,
            std::numeric_limits<double>::infinity(), current));
    auto result =
        RunSketchRefine(*table_, coarser, options_.sketch_refine, query);
    if (result.ok()) {
      RemedyReport report;
      report.result = std::move(*result);
      report.rounds = round;
      return report;
    }
    if (!result.status().IsInfeasible()) return result.status();
    // Unlike the other remedies, merging runs to exhaustion: the final
    // step is exact, so stopping early would forfeit the guarantee.
    // max_rounds_per_remedy is intentionally not applied.
  }
  // One group left: "this process reduces the problem to the original
  // problem (i.e., with no partitioning)" — solve it directly, under the
  // same subproblem budgets SKETCHREFINE would use.
  DirectOptions direct_opts;
  direct_opts.limits = options_.sketch_refine.limits;
  direct_opts.branch_and_bound = options_.sketch_refine.branch_and_bound;
  DirectEvaluator direct(*table_, direct_opts);
  PAQL_ASSIGN_OR_RETURN(EvalResult exact, direct.Evaluate(query));
  RemedyReport report;
  report.result = std::move(exact);
  report.rounds = round + 1;
  return report;
}

}  // namespace paql::core
