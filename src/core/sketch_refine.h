// SKETCHREFINE: scalable approximate package evaluation (Section 4).
//
// The algorithm assumes an offline partitioning of the input relation into
// groups of similar tuples with centroid representatives (partition/
// partitioner.h). Evaluation proceeds in two phases:
//
//  SKETCH  — solve the package query over the m representatives only, with
//            per-representative repetition bounds |G_j|*(K+1) standing in
//            for the group members (Section 4.2.1). If the sketch is
//            infeasible, the *hybrid sketch query* fallback (Section 4.4,
//            remedy 1) retries with one group's original tuples merged in,
//            trying groups until one is feasible.
//
//  REFINE  — greedy backtracking refinement (Algorithm 2): one group at a
//            time, replace the group's representatives by original tuples
//            by solving a subproblem whose constraint bounds are shifted by
//            the aggregates of the rest of the package; on infeasibility,
//            backtrack and prioritize the failed groups.
//
// When a subproblem exceeds `max_subproblem_size` variables, it is solved
// recursively: the candidate set is re-partitioned on the fly and the same
// sketch+refine machinery runs one level down (Sections 4.2.1/4.2.2 both
// note this recursive escape hatch).
//
// Guarantees: SKETCHREFINE returns feasible packages only; with a radius-
// limited partitioning (omega from Theorem 3 Eq. 1) the objective is within
// (1 +/- epsilon)^6 of DIRECT's. False infeasibility is possible but rare
// (Theorem 4); the hybrid sketch reduces it further.
#ifndef PAQL_CORE_SKETCH_REFINE_H_
#define PAQL_CORE_SKETCH_REFINE_H_

#include "core/package.h"
#include "engine/exec_context.h"
#include "paql/ast.h"
#include "partition/partitioner.h"

namespace paql::core {

/// Strategy-specific knobs on top of the shared execution context. The
/// inherited fields map onto SKETCHREFINE as follows: `limits` budgets
/// every subproblem ILP (sketch, refine, hybrid); `seed` randomizes the
/// initial refinement order of Algorithm 2; `cancel` is checked before
/// every subproblem solve (the parallel ordering race of paper §4.5 uses
/// it to stop losing orderings once a winner finishes).
struct SketchRefineOptions : engine::ExecContext {
  /// Enable the hybrid sketch fallback (the paper's experiments use it as
  /// "the only strategy to cope with infeasible initial queries").
  bool use_hybrid_sketch = true;

  /// Subproblems larger than this recurse into a nested sketch+refine
  /// (0 = never recurse; solve everything directly).
  size_t max_subproblem_size = 0;

  /// Cap on refine-query solves before giving up (guards the worst-case
  /// exponential backtracking). 0 = automatic: 10*m + 1000.
  int64_t max_refine_attempts = 0;
};

/// Evaluates package queries with the SKETCHREFINE algorithm over a fixed
/// table + offline partitioning.
class SketchRefineEvaluator {
 public:
  SketchRefineEvaluator(const relation::ColumnSource& table,
                        const partition::Partitioning& partitioning,
                        SketchRefineOptions options = {});

  Result<EvalResult> Evaluate(const lang::PackageQuery& query) const;
  Result<EvalResult> Evaluate(const translate::CompiledQuery& query) const;

  const relation::ColumnSource& table() const { return *table_; }
  const partition::Partitioning& partitioning() const { return *partitioning_; }

 private:
  const relation::ColumnSource* table_;
  const partition::Partitioning* partitioning_;
  SketchRefineOptions options_;
};

}  // namespace paql::core

#endif  // PAQL_CORE_SKETCH_REFINE_H_
