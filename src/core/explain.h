// EXPLAIN for package queries: a human-readable rendering of what the
// evaluator will do, without solving anything.
//
// The paper's system is a query-evaluation layer, and like any such layer it
// needs an EXPLAIN facility: the PaQL -> ILP translation (Section 3.1) and
// the SKETCHREFINE plan (Section 4.2) are both non-obvious, and users tuning
// tau or choosing partitioning attributes need to see the shape of the
// problem the solver will receive.
//
// Two entry points:
//   * ExplainDirect       — the DIRECT plan: base-relation statistics and
//                           the translated ILP (variables, constraint rows,
//                           indicator variables for OR, objective).
//   * ExplainSketchRefine — the SKETCHREFINE plan: partitioning statistics
//                           (groups, sizes, radii), the sketch problem size,
//                           and the refine subproblem sizes.
//
// Both return plain text, one fact per line, stable enough to test against.
#ifndef PAQL_CORE_EXPLAIN_H_
#define PAQL_CORE_EXPLAIN_H_

#include <string>

#include "partition/partitioner.h"
#include "relation/column_source.h"
#include "relation/table.h"
#include "translate/compiled_query.h"

namespace paql::core {

/// Render the DIRECT evaluation plan of `query` over `table`.
std::string ExplainDirect(const translate::CompiledQuery& query,
                          const relation::ColumnSource& table);

/// Render the SKETCHREFINE evaluation plan of `query` over `table` with the
/// offline `partitioning`.
std::string ExplainSketchRefine(const translate::CompiledQuery& query,
                                const relation::ColumnSource& table,
                                const partition::Partitioning& partitioning);

}  // namespace paql::core

#endif  // PAQL_CORE_EXPLAIN_H_
