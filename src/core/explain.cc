#include "core/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace paql::core {

using relation::RowId;
using relation::ColumnSource;
using relation::Table;
using translate::CompiledQuery;

namespace {

/// min / median / max of a non-empty vector (sorted copy).
struct Spread {
  double min = 0, median = 0, max = 0;
};
Spread ComputeSpread(std::vector<double> values) {
  Spread s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values[values.size() / 2];
  return s;
}

void DescribeIlp(const CompiledQuery& query, const ColumnSource& table,
                 const std::vector<RowId>& rows, std::ostringstream& out) {
  auto model = query.BuildModel(table, rows);
  if (!model.ok()) {
    out << "  ILP: translation failed: " << model.status().message() << "\n";
    return;
  }
  int indicators = model->num_vars() - static_cast<int>(rows.size());
  out << "  ILP: " << model->num_vars() << " integer variables ("
      << rows.size() << " tuple vars";
  if (indicators > 0) out << " + " << indicators << " OR indicators";
  out << "), " << model->num_rows() << " rows\n";
  for (const auto& row : model->rows()) {
    out << "    row [" << (std::isinf(row.lo) ? "-inf" : FormatDouble(row.lo))
        << ", " << (std::isinf(row.hi) ? "+inf" : FormatDouble(row.hi))
        << "]  " << (row.name.empty() ? "(unnamed)" : row.name) << "\n";
  }
  out << "  objective: ";
  if (!query.has_objective()) {
    out << "none (vacuous max 0; first feasible package wins)\n";
  } else {
    out << (query.maximize() ? "MAXIMIZE" : "MINIMIZE");
    if (!query.objective_columns().empty()) {
      out << " over columns " << Join(query.objective_columns(), ", ");
    }
    out << "\n";
  }
}

}  // namespace

std::string ExplainDirect(const CompiledQuery& query, const ColumnSource& table) {
  std::ostringstream out;
  out << "DIRECT plan (paper Section 3.2)\n";
  out << "  input relation: " << table.num_rows() << " rows\n";
  std::vector<RowId> base = query.ComputeBaseRows(table);
  if (query.has_base_predicate()) {
    out << "  base relation (WHERE): " << base.size() << " rows ("
        << table.num_rows() - base.size() << " excluded; their variables "
        << "are eliminated)\n";
  } else {
    out << "  base relation: no WHERE clause; all " << base.size()
        << " rows are candidates\n";
  }
  double ub = query.per_tuple_ub();
  if (std::isinf(ub)) {
    out << "  repetition: unbounded (no REPEAT clause)\n";
  } else {
    out << "  repetition: 0 <= x_i <= " << FormatDouble(ub) << " (REPEAT "
        << FormatDouble(ub - 1) << ")\n";
  }
  DescribeIlp(query, table, base, out);
  return out.str();
}

std::string ExplainSketchRefine(const CompiledQuery& query, const ColumnSource& table,
                                const partition::Partitioning& partitioning) {
  std::ostringstream out;
  out << "SKETCHREFINE plan (paper Section 4)\n";
  out << "  input relation: " << table.num_rows() << " rows\n";

  // Candidate rows per group after the base predicate.
  std::vector<size_t> group_candidates(partitioning.num_groups(), 0);
  size_t base_rows = 0;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (query.BaseAccepts(table, r)) {
      ++group_candidates[partitioning.gid[r]];
      ++base_rows;
    }
  }
  size_t nonempty = 0;
  std::vector<double> sizes;
  for (size_t g = 0; g < group_candidates.size(); ++g) {
    if (group_candidates[g] > 0) {
      ++nonempty;
      sizes.push_back(static_cast<double>(group_candidates[g]));
    }
  }
  out << "  base relation: " << base_rows << " candidate rows\n";
  out << "  partitioning: " << partitioning.num_groups() << " groups ("
      << nonempty << " with candidates), size threshold tau = "
      << partitioning.size_threshold << ", attributes: "
      << Join(partitioning.attributes, ", ") << "\n";
  if (!sizes.empty()) {
    Spread s = ComputeSpread(sizes);
    out << "  group sizes (candidates): min " << s.min << ", median "
        << s.median << ", max " << s.max << "\n";
  }
  if (!partitioning.radius.empty()) {
    std::vector<double> radii(partitioning.radius.begin(),
                              partitioning.radius.end());
    Spread r = ComputeSpread(radii);
    out << "  group radii: min " << FormatDouble(r.min) << ", median "
        << FormatDouble(r.median) << ", max " << FormatDouble(r.max);
    if (partitioning.radius_limit > 0 &&
        std::isfinite(partitioning.radius_limit)) {
      out << " (radius limit omega = "
          << FormatDouble(partitioning.radius_limit)
          << "; Theorem 3 approximation bounds apply)";
    } else {
      out << " (no radius limit; no formal approximation guarantee)";
    }
    out << "\n";
  }
  out << "  SKETCH: one ILP over the " << nonempty
      << " group representatives\n";
  if (!sizes.empty()) {
    Spread s = ComputeSpread(sizes);
    out << "  REFINE: up to " << nonempty
        << " ILPs, one per group with representatives in the sketch "
        << "package, each over at most " << s.max << " tuple variables\n";
  }
  out << "  fallback: hybrid sketch query on sketch infeasibility "
      << "(Section 4.4 remedy 1)\n";
  return out.str();
}

}  // namespace paql::core
