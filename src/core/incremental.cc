#include "core/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "ilp/branch_and_bound.h"

namespace paql::core {

using partition::Partitioning;
using relation::RowId;
using relation::ColumnSource;
using relation::Table;
using translate::CompiledQuery;

Result<IncrementalResult> ReEvaluatePackage(
    const ColumnSource& table, const Partitioning& partitioning,
    const CompiledQuery& query, const Package& previous,
    const std::vector<uint32_t>& dirty_groups,
    const IncrementalOptions& options) {
  Stopwatch total;
  if (partitioning.gid.size() != table.num_rows()) {
    return Status::InvalidArgument(
        "partitioning does not cover the table (absorb appended rows "
        "first: partition::AbsorbAppendedRows)");
  }
  std::vector<bool> is_dirty(partitioning.num_groups(), false);
  for (uint32_t g : dirty_groups) {
    if (g >= partitioning.num_groups()) {
      return Status::InvalidArgument(StrCat("dirty group ", g,
                                            " out of range"));
    }
    is_dirty[g] = true;
  }

  // Split the previous package into the fixed (clean-group) part and the
  // released (dirty-group) part. Deleted rows are dropped outright: the
  // batch that deleted them dirtied their group (AbsorbBatch's contract),
  // so the subproblem below re-chooses their replacements.
  IncrementalResult out;
  std::vector<RowId> fixed_rows;
  std::vector<int64_t> fixed_mults;
  for (size_t i = 0; i < previous.rows.size(); ++i) {
    RowId r = previous.rows[i];
    if (r >= table.num_rows()) {
      return Status::InvalidArgument(
          StrCat("previous package row ", r, " out of range"));
    }
    if (table.RowDeleted(r) || partitioning.gid[r] == partition::kNoGroup) {
      ++out.previous_rows_deleted;
      continue;
    }
    if (!is_dirty[partitioning.gid[r]]) {
      fixed_rows.push_back(r);
      fixed_mults.push_back(previous.multiplicity[i]);
    }
  }

  // Candidates: base-relation rows of the dirty groups. Iterate the
  // `is_dirty` mask, not `dirty_groups` — a duplicated id in the caller's
  // list would otherwise create duplicate ILP variables for the same row
  // and duplicated package entries.
  Stopwatch translate_watch;
  std::vector<RowId> candidates;
  for (uint32_t g = 0; g < partitioning.num_groups(); ++g) {
    if (!is_dirty[g]) continue;
    for (RowId r : partitioning.groups[g]) {
      if (query.BaseAccepts(table, r)) candidates.push_back(r);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  out.dirty_candidates = candidates.size();

  // Refine-style subproblem: dirty-group candidates under bounds shifted by
  // the fixed part's aggregates (Algorithm 2's Q[G_j], with G_j = the union
  // of the dirty groups).
  std::vector<double> offsets =
      query.LeafActivities(table, fixed_rows, fixed_mults);
  CompiledQuery::BuildOptions bopts;
  bopts.activity_offset = &offsets;
  PAQL_ASSIGN_OR_RETURN(lp::Model model,
                        query.BuildModel(table, candidates, bopts));
  double translate_seconds = translate_watch.ElapsedSeconds();
  ilp::IlpStats subproblem_stats;
  auto sol = ilp::SolveIlp(model, options.sketch_refine.limits,
                           options.sketch_refine.EffectiveBranchAndBound(),
                           /*warm=*/nullptr, &subproblem_stats);
  if (sol.ok()) {
    out.result.stats.Accumulate(sol->stats);
    out.result.stats.translate_seconds = translate_seconds;
    out.result.package.rows = fixed_rows;
    out.result.package.multiplicity = fixed_mults;
    for (size_t k = 0; k < candidates.size(); ++k) {
      int64_t mult = static_cast<int64_t>(std::llround(sol->x[k]));
      if (mult > 0) {
        out.result.package.rows.push_back(candidates[k]);
        out.result.package.multiplicity.push_back(mult);
      }
    }
    out.result.package.Normalize();
    PAQL_RETURN_IF_ERROR(ValidatePackage(query, table, out.result.package));
    out.result.objective = query.ObjectiveValue(
        table, out.result.package.rows, out.result.package.multiplicity);
    out.result.stats.wall_seconds = total.ElapsedSeconds();
    return out;
  }
  if (!sol.status().IsInfeasible()) return sol.status();

  // The fixed part over-constrains the subproblem (e.g. the query changed
  // since `previous` was computed, or the batch deleted a tuple the rest of
  // the package depended on): fall back to a full run. The translate time
  // and solver effort spent on the abandoned incremental subproblem are
  // real work this call performed, so they ride along in the reported
  // stats, and dirty_candidates keeps describing the subproblem that was
  // attempted.
  SketchRefineEvaluator full(table, partitioning, options.sketch_refine);
  PAQL_ASSIGN_OR_RETURN(out.result, full.Evaluate(query));
  out.used_fallback = true;
  out.result.stats.Accumulate(subproblem_stats);
  out.result.stats.translate_seconds += translate_seconds;
  out.result.stats.wall_seconds = total.ElapsedSeconds();
  return out;
}

}  // namespace paql::core
