#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <optional>
#include <thread>

#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace paql::core {

using partition::Partitioning;
using relation::RowId;
using relation::ColumnSource;
using relation::Table;
using translate::CompiledQuery;

namespace {

/// The evaluator's fan-out: the explicit num_threads override when set,
/// otherwise the engine-level ExecContext::threads knob (satellite of the
/// morsel-parallelism work: one setting controls the whole stack).
int ResolveWorkers(const ParallelOptions& options) {
  int requested = options.num_threads > 0 ? options.num_threads
                                          : options.sketch_refine.threads;
  return ClampThreads(requested);
}

/// Per-worker solver settings: each racer / group subproblem is one unit
/// of the fan-out, so nested morsel parallelism and the concurrent
/// branch-and-bound stay off inside it (the thread budget is already
/// spent at this level).
SketchRefineOptions SerialInner(const SketchRefineOptions& base) {
  SketchRefineOptions opts = base;
  opts.threads = 1;
  return opts;
}

}  // namespace

const char* ParallelModeName(ParallelMode mode) {
  switch (mode) {
    case ParallelMode::kGroupParallel: return "group_parallel";
    case ParallelMode::kOrderingRace: return "ordering_race";
  }
  return "?";
}

ParallelSketchRefineEvaluator::ParallelSketchRefineEvaluator(
    const ColumnSource& table, const Partitioning& partitioning,
    ParallelOptions options)
    : table_(&table),
      partitioning_(&partitioning),
      options_(std::move(options)) {
  PAQL_CHECK_MSG(partitioning.gid.size() == table.num_rows(),
                 "partitioning does not cover the table");
}

Result<EvalResult> ParallelSketchRefineEvaluator::Evaluate(
    const lang::PackageQuery& query) const {
  PAQL_ASSIGN_OR_RETURN(
      CompiledQuery cq, CompiledQuery::Compile(query, table_->schema()));
  return Evaluate(cq);
}

Result<EvalResult> ParallelSketchRefineEvaluator::Evaluate(
    const CompiledQuery& query) const {
  switch (options_.mode) {
    case ParallelMode::kGroupParallel:
      return EvaluateGroupParallel(query);
    case ParallelMode::kOrderingRace:
      return EvaluateOrderingRace(query);
  }
  return Status::InvalidArgument("unknown parallel mode");
}

// ---------------------------------------------------------------------------
// kOrderingRace
// ---------------------------------------------------------------------------

Result<EvalResult> ParallelSketchRefineEvaluator::EvaluateOrderingRace(
    const CompiledQuery& query) const {
  Stopwatch total;
  const int threads = ResolveWorkers(options_);
  // The race needs its own cancel flag (the winner stops the losers), but
  // the caller may have supplied one too; a monitor bridges it so external
  // cancellation still stops every racer.
  const std::atomic<bool>* external = options_.sketch_refine.cancel;
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::optional<EvalResult> winner;
  Status first_error = Status::OK();
  int infeasible_count = 0;

  auto racer = [&](int i) {
    SketchRefineOptions opts = SerialInner(options_.sketch_refine);
    opts.seed = options_.sketch_refine.seed + static_cast<uint64_t>(i);
    opts.cancel = &cancel;
    SketchRefineEvaluator evaluator(*table_, *partitioning_, opts);
    auto result = evaluator.Evaluate(query);
    std::lock_guard<std::mutex> lock(mu);
    if (result.ok()) {
      if (!winner.has_value()) {
        winner = std::move(*result);
        cancel.store(true, std::memory_order_relaxed);
      }
      return;
    }
    if (result.status().IsInfeasible()) {
      ++infeasible_count;
    } else if (first_error.ok() &&
               !(cancel.load(std::memory_order_relaxed) &&
                 result.status().IsResourceExhausted())) {
      // Real failures are reported; cancellation-induced aborts are not.
      first_error = result.status();
    }
  };

  // Racers borrow shared-pool workers (the calling thread participates);
  // the only raw thread left is the cancellation monitor, a sleeping
  // poller that bridges the caller's flag into the race.
  std::atomic<bool> race_done{false};
  std::thread monitor;
  if (external != nullptr) {
    monitor = std::thread([&] {
      while (!race_done.load(std::memory_order_relaxed)) {
        if (external->load(std::memory_order_relaxed)) {
          cancel.store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  ThreadPool::Global().ParallelFor(
      static_cast<size_t>(threads), 1, threads,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) racer(static_cast<int>(i));
      });
  race_done.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();

  // A completed winner is returned even when cancellation landed late —
  // the work is done and the package is valid.
  if (winner.has_value()) {
    winner->stats.threads_used = threads;
    winner->stats.wall_seconds = total.ElapsedSeconds();
    return std::move(*winner);
  }
  if (external != nullptr && external->load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted("evaluation cancelled");
  }
  if (!first_error.ok()) return first_error;
  return Status::Infeasible(
      StrCat("all ", threads, " refinement orderings reported infeasible (",
             infeasible_count, " certain)"));
}

// ---------------------------------------------------------------------------
// kGroupParallel
// ---------------------------------------------------------------------------

Result<EvalResult> ParallelSketchRefineEvaluator::EvaluateGroupParallel(
    const CompiledQuery& query) const {
  Stopwatch total;
  const int threads = ResolveWorkers(options_);
  EvalStats stats;

  // The fallback inherits whatever the speculative attempt already paid for
  // — the base scan and any sketch/refine ILP work — so the reported stats
  // cover the whole call, not just the sequential rerun.
  auto fall_back = [&](const EvalStats& partial) -> Result<EvalResult> {
    SketchRefineEvaluator sequential(*table_, *partitioning_,
                                     options_.sketch_refine);
    auto result = sequential.Evaluate(query);
    if (result.ok()) {
      result->stats.translate_seconds += partial.translate_seconds;
      result->stats.solve_seconds += partial.solve_seconds;
      result->stats.ilp_solves += partial.ilp_solves;
      result->stats.lp_iterations += partial.lp_iterations;
      result->stats.bnb_nodes += partial.bnb_nodes;
      result->stats.warm_lp_solves += partial.warm_lp_solves;
      result->stats.pricing_candidate_hits += partial.pricing_candidate_hits;
      result->stats.bound_flips += partial.bound_flips;
      result->stats.dse_pivots += partial.dse_pivots;
      result->stats.rc_fixed_vars += partial.rc_fixed_vars;
      result->stats.presolve_fixed_vars += partial.presolve_fixed_vars;
      result->stats.parallel_bnb_nodes += partial.parallel_bnb_nodes;
      result->stats.peak_memory_bytes = std::max(
          result->stats.peak_memory_bytes, partial.peak_memory_bytes);
      result->stats.parallel_fallback = true;
      result->stats.threads_used = threads;
      result->stats.wall_seconds = total.ElapsedSeconds();
    }
    return result;
  };

  // Group the base relation by the offline partitioning (as the sequential
  // driver does).
  const bool vectorized = options_.sketch_refine.vectorized;
  Stopwatch translate_watch;
  std::vector<std::vector<RowId>> group_rows(partitioning_->num_groups());
  std::vector<RowId> base =
      vectorized ? query.ComputeBaseRowsVectorized(*table_, threads)
                 : query.ComputeBaseRows(*table_);
  for (RowId r : base) {
    group_rows[partitioning_->gid[r]].push_back(r);
  }
  std::vector<size_t> active;  // groups with candidates
  for (size_t g = 0; g < group_rows.size(); ++g) {
    if (!group_rows[g].empty()) active.push_back(g);
  }
  stats.translate_seconds = translate_watch.ElapsedSeconds();
  if (active.empty()) return fall_back(stats);

  // --- SKETCH (one ILP, not parallelized: it is small by design). ---
  std::vector<RowId> rep_rows;
  std::vector<double> rep_ub;
  rep_rows.reserve(active.size());
  for (size_t g : active) {
    rep_rows.push_back(static_cast<RowId>(g));
    double ub = query.per_tuple_ub();
    rep_ub.push_back(std::isinf(ub)
                         ? ub
                         : ub * static_cast<double>(group_rows[g].size()));
  }
  CompiledQuery::Segment seg;
  seg.table = &partitioning_->representatives;
  seg.rows = &rep_rows;
  seg.ub_override = &rep_ub;
  PAQL_ASSIGN_OR_RETURN(lp::Model sketch_model,
                        query.BuildModelSegments({seg}, nullptr, vectorized));
  auto sketch =
      ilp::SolveIlp(sketch_model, options_.sketch_refine.limits,
                    options_.sketch_refine.EffectiveBranchAndBound());
  if (!sketch.ok()) {
    // Infeasible sketch: the sequential path owns the hybrid-sketch and
    // backtracking machinery.
    if (sketch.status().IsInfeasible()) return fall_back(stats);
    return sketch.status();
  }
  stats.Accumulate(sketch->stats);

  std::vector<int64_t> rep_mult(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    rep_mult[i] = std::llround(sketch->x[i]);
  }

  // Total sketch activities; per-group offsets subtract the group's own
  // representative contribution (activities are linear in the package).
  std::vector<RowId> picked_reps;
  std::vector<int64_t> picked_mults;
  for (size_t i = 0; i < active.size(); ++i) {
    if (rep_mult[i] > 0) {
      picked_reps.push_back(rep_rows[i]);
      picked_mults.push_back(rep_mult[i]);
    }
  }
  std::vector<double> total_acts = query.LeafActivities(
      partitioning_->representatives, picked_reps, picked_mults);

  // --- Speculative parallel REFINE: one subproblem per picked group. ---
  struct GroupOutcome {
    Status status = Status::OK();
    std::vector<int64_t> mults;  // per candidate of the group
    ilp::IlpStats ilp;
  };
  std::vector<size_t> picked_groups;  // indices into `active`
  for (size_t i = 0; i < active.size(); ++i) {
    if (rep_mult[i] > 0) picked_groups.push_back(i);
  }
  std::vector<GroupOutcome> outcomes(picked_groups.size());

  // Per-group refine subproblems are the units of the fan-out: one morsel
  // each, claimed off the shared pool (the calling thread participates),
  // with morsel parallelism and the concurrent search disabled inside.
  const SketchRefineOptions inner = SerialInner(options_.sketch_refine);
  auto run_job = [&](size_t job) {
    if (options_.sketch_refine.Cancelled()) {
      outcomes[job].status = Status::ResourceExhausted("evaluation cancelled");
      return;
    }
    size_t i = picked_groups[job];
    size_t g = active[i];
    GroupOutcome& out = outcomes[job];
    // Offsets: everything in the sketch except this group's rep.
    std::vector<double> offsets = query.LeafActivities(
        partitioning_->representatives, {rep_rows[i]}, {rep_mult[i]});
    for (size_t k = 0; k < offsets.size(); ++k) {
      offsets[k] = total_acts[k] - offsets[k];
    }
    CompiledQuery::BuildOptions build;
    build.activity_offset = &offsets;
    build.vectorized = vectorized;
    auto model = query.BuildModel(*table_, group_rows[g], build);
    if (!model.ok()) {
      out.status = model.status();
      return;  // keep draining the queue; assembly reports the failure
    }
    auto sol = ilp::SolveIlp(*model, inner.limits,
                             inner.EffectiveBranchAndBound());
    if (!sol.ok()) {
      out.status = sol.status();
      return;  // other groups may still be useful for diagnostics
    }
    out.ilp = sol->stats;
    out.mults.resize(group_rows[g].size());
    for (size_t k = 0; k < group_rows[g].size(); ++k) {
      out.mults[k] = std::llround(sol->x[k]);
    }
  };
  ThreadPool::Global().ParallelFor(
      picked_groups.size(), 1, threads, [&](size_t begin, size_t end) {
        for (size_t job = begin; job < end; ++job) run_job(job);
      });

  // Charge every completed group solve to the stats first, so a failure in
  // one group does not silently discard the others' solver work.
  for (size_t job = 0; job < picked_groups.size(); ++job) {
    if (outcomes[job].status.ok()) stats.Accumulate(outcomes[job].ilp);
  }

  // Any per-group failure, or a combined package that misses the global
  // constraints, falls back to the sequential algorithm.
  EvalResult result;
  for (size_t job = 0; job < picked_groups.size(); ++job) {
    const GroupOutcome& out = outcomes[job];
    if (!out.status.ok()) {
      if (out.status.IsInfeasible() || out.status.IsResourceExhausted()) {
        return fall_back(stats);
      }
      return out.status;
    }
    size_t g = active[picked_groups[job]];
    for (size_t k = 0; k < group_rows[g].size(); ++k) {
      if (out.mults[k] > 0) {
        result.package.rows.push_back(group_rows[g][k]);
        result.package.multiplicity.push_back(out.mults[k]);
      }
    }
  }
  result.package.Normalize();
  if (!query.PackageSatisfiesGlobals(*table_, result.package.rows,
                                     result.package.multiplicity)) {
    // Local refinements conflicted — the failure mode §4.5 predicts.
    return fall_back(stats);
  }
  stats.groups_refined = static_cast<int64_t>(picked_groups.size());
  result.objective = query.ObjectiveValue(*table_, result.package.rows,
                                          result.package.multiplicity);
  result.stats = stats;
  result.stats.threads_used = threads;
  result.stats.wall_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace paql::core
