#include "core/package.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/str_util.h"

namespace paql::core {

int64_t Package::TotalCount() const {
  return std::accumulate(multiplicity.begin(), multiplicity.end(),
                         int64_t{0});
}

relation::Table Package::Materialize(const relation::ColumnSource& source) const {
  std::vector<relation::RowId> expanded;
  expanded.reserve(static_cast<size_t>(TotalCount()));
  for (size_t k = 0; k < rows.size(); ++k) {
    for (int64_t i = 0; i < multiplicity[k]; ++i) expanded.push_back(rows[k]);
  }
  return relation::MaterializeRows(source, expanded);
}

void Package::Normalize() {
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return rows[a] < rows[b]; });
  std::vector<relation::RowId> new_rows(rows.size());
  std::vector<int64_t> new_mult(rows.size());
  for (size_t i = 0; i < order.size(); ++i) {
    new_rows[i] = rows[order[i]];
    new_mult[i] = multiplicity[order[i]];
  }
  rows = std::move(new_rows);
  multiplicity = std::move(new_mult);
}

std::string Package::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t k = 0; k < rows.size(); ++k) {
    if (k > 0) os << ", ";
    os << rows[k];
    if (multiplicity[k] != 1) os << "x" << multiplicity[k];
  }
  os << "}";
  return os.str();
}

Status ValidatePackage(const translate::CompiledQuery& query,
                       const relation::ColumnSource& table, const Package& package,
                       double tol) {
  if (package.rows.size() != package.multiplicity.size()) {
    return Status::InvalidArgument("package rows/multiplicity mismatch");
  }
  for (size_t k = 0; k < package.rows.size(); ++k) {
    relation::RowId r = package.rows[k];
    if (r >= table.num_rows()) {
      return Status::InvalidArgument(StrCat("package row ", r, " out of range"));
    }
    if (package.multiplicity[k] <= 0) {
      return Status::InvalidArgument(
          StrCat("package row ", r, " has non-positive multiplicity"));
    }
    if (static_cast<double>(package.multiplicity[k]) > query.per_tuple_ub()) {
      return Status::InvalidArgument(
          StrCat("package row ", r, " repeats ", package.multiplicity[k],
                 " times, exceeding the REPEAT bound ",
                 query.per_tuple_ub()));
    }
    if (table.RowDeleted(r)) {
      return Status::InvalidArgument(
          StrCat("package row ", r, " has been deleted"));
    }
    if (!query.BaseAccepts(table, r)) {
      return Status::InvalidArgument(
          StrCat("package row ", r, " violates the base predicate"));
    }
  }
  if (!query.PackageSatisfiesGlobals(table, package.rows,
                                     package.multiplicity, tol)) {
    return Status::Infeasible("package violates a global predicate");
  }
  return Status::OK();
}

void EvalStats::Accumulate(const ilp::IlpStats& ilp) {
  ++ilp_solves;
  lp_iterations += ilp.lp_iterations;
  bnb_nodes += ilp.nodes;
  solve_seconds += ilp.wall_seconds;
  warm_lp_solves += ilp.warm_lp_solves;
  pricing_candidate_hits += ilp.pricing_candidate_hits;
  bound_flips += ilp.bound_flips;
  dse_pivots += ilp.dse_pivots;
  rc_fixed_vars += ilp.rc_fixed_vars;
  presolve_fixed_vars += ilp.presolve_fixed_vars;
  parallel_bnb_nodes += ilp.parallel_nodes;
  peak_memory_bytes = std::max(peak_memory_bytes, ilp.peak_memory_bytes);
}

}  // namespace paql::core
