// Parallel SKETCHREFINE (paper Section 4.5, "Parallelizing SketchRefine").
//
// The paper sketches two parallelization strategies and flags the risk of
// each; this module implements both so the ablation bench can quantify the
// trade-off:
//
//  * kGroupParallel — "perform refinement on several groups in parallel".
//    One sketch is solved, then every group's refine query runs on its own
//    thread against the *initial* sketch state (all other groups held at
//    their representative multiplicities). Because each refinement makes
//    local decisions without seeing the others' replacements, the combined
//    package can violate the global constraints — the exact failure mode
//    the paper predicts ("this process is more likely to reach
//    infeasibility"). On any conflict or per-group infeasibility the
//    evaluator falls back to the sequential algorithm, so results are
//    always correct; the speculative pass is a fast path.
//
//  * kOrderingRace — "parallelization may focus on the backtracking
//    process, using additional resources to evaluate different group
//    orderings in parallel". N sequential evaluations with different
//    refinement-order seeds race; the first feasible result cancels the
//    rest (via SketchRefineOptions::cancel). Latency equals the luckiest
//    ordering instead of the unluckiest, which pays off exactly when
//    greedy backtracking is ordering-sensitive.
//
// Both modes return packages that satisfy all query constraints; only the
// objective may differ from the sequential algorithm's (each refine query
// is locally optimal, and which local optima combine depends on order).
#ifndef PAQL_CORE_PARALLEL_H_
#define PAQL_CORE_PARALLEL_H_

#include "core/sketch_refine.h"

namespace paql::core {

enum class ParallelMode {
  kGroupParallel,  // speculative parallel refinement + sequential fallback
  kOrderingRace,   // race N refinement orders, first feasible wins
};

const char* ParallelModeName(ParallelMode mode);

struct ParallelOptions {
  /// Options for the underlying sketch/refine machinery (and the
  /// sequential fallback). Its inherited ExecContext fields apply to every
  /// worker; `sketch_refine.seed` is the base seed for kOrderingRace
  /// (racer i refines with seed + i).
  SketchRefineOptions sketch_refine;

  ParallelMode mode = ParallelMode::kGroupParallel;

  /// Worker count override. 0 (the default) inherits the engine-level
  /// knob — `sketch_refine.threads`, i.e. ExecContext::threads — so one
  /// setting controls the whole stack; a positive value pins this
  /// evaluator's fan-out regardless of the context (the planner's
  /// parallel_threads escape hatch). For kOrderingRace the resolved count
  /// is also the number of orderings raced. Workers are borrowed from the
  /// shared process-wide pool (common/thread_pool.h), not spawned.
  int num_threads = 0;
};

/// Parallel package evaluation over a fixed table + offline partitioning.
class ParallelSketchRefineEvaluator {
 public:
  ParallelSketchRefineEvaluator(const relation::ColumnSource& table,
                                const partition::Partitioning& partitioning,
                                ParallelOptions options = {});

  Result<EvalResult> Evaluate(const lang::PackageQuery& query) const;
  Result<EvalResult> Evaluate(const translate::CompiledQuery& query) const;

 private:
  Result<EvalResult> EvaluateGroupParallel(
      const translate::CompiledQuery& query) const;
  Result<EvalResult> EvaluateOrderingRace(
      const translate::CompiledQuery& query) const;

  const relation::ColumnSource* table_;
  const partition::Partitioning* partitioning_;
  ParallelOptions options_;
};

}  // namespace paql::core

#endif  // PAQL_CORE_PARALLEL_H_
