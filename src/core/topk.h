// Top-k package enumeration.
//
// A PaQL query with an objective returns the single best package; the
// paper's PackageBuilder predecessor [5] and future-work section motivate
// returning *multiple* good packages so users can browse alternatives.
// This module enumerates the k best distinct packages of a REPEAT 0 query
// by repeatedly solving the ILP and, after each answer, adding a "no-good"
// exclusion cut that forbids the found tuple set (or anything within a
// chosen Hamming distance of it):
//
//   sum_{i in S} (1 - x_i) + sum_{i not in S} x_i >= d
//
// where S is the incumbent support and d the minimum difference. Each cut
// is one row, so enumerating k packages costs k ILP solves over a model
// that grows by k dense rows — practical for the small k a UI would show.
//
// Restricted to REPEAT 0 (binary variables): the exclusion cut above is
// only valid for 0/1 multiplicities. Queries with repetition are rejected
// with kUnsupported rather than silently mis-enumerated.
#ifndef PAQL_CORE_TOPK_H_
#define PAQL_CORE_TOPK_H_

#include <vector>

#include "core/package.h"
#include "engine/exec_context.h"
#include "paql/ast.h"

namespace paql::core {

/// Enumeration-specific knobs; the inherited `limits`/`branch_and_bound`
/// budget each of the k ILP solves.
struct TopKOptions : engine::ExecContext {
  /// How many packages to return (fewer when the space runs dry).
  size_t k = 5;
  /// Minimum Hamming distance (tuples swapped in or out) between any two
  /// returned packages. 1 = merely distinct; larger values force diversity.
  int64_t min_difference = 1;
};

/// The k best distinct packages of `query` over `table`, best first.
/// Requires REPEAT 0 and an objective clause. Returns fewer than k results
/// when no further feasible package exists; returns kInfeasible only when
/// not even one exists.
Result<std::vector<EvalResult>> EnumerateTopPackages(
    const relation::Table& table, const translate::CompiledQuery& query,
    const TopKOptions& options = {});

Result<std::vector<EvalResult>> EnumerateTopPackages(
    const relation::Table& table, const lang::PackageQuery& query,
    const TopKOptions& options = {});

}  // namespace paql::core

#endif  // PAQL_CORE_TOPK_H_
